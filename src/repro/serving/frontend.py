"""Per-query streaming frontend: admission control, dynamic batching, routing.

The step router (:mod:`repro.serving.router`) decides once per dwell step —
the coarse version of MP-Rec's per-query dynamic scheduler that picks a
representation + hardware path *per query* under load.  This module closes
that gap without giving up the router's analysis machinery:

* :class:`QueryStream` — individual query arrivals realized from a
  :class:`~repro.serving.trace.LoadTrace` (Poisson by default, or a
  deterministic evenly-paced process for exact tests);
* :class:`StreamingFrontend` — the per-query serving loop.  Arrivals are
  grouped into fixed-width decision windows; each window's path comes from
  the *same* estimator + hysteresis + switch-cost state machine the step
  router runs (:meth:`~repro.serving.router.MultiPathRouter.decide_from_estimates`),
  which is what makes the frontend's equivalence guarantee structural
  rather than statistical: with the window width equal to the trace's
  dwell step, the frontend's per-window path choices reproduce
  :meth:`~repro.serving.router.MultiPathRouter.decide` bit-for-bit.

Within a window every query passes **admission control** with three
outcomes:

* *admit* — served this window.  The admission cap is
  ``floor(max_feasible_qps(path) * window_seconds)`` queries, so the
  admitted rate can never exceed the chosen path's feasible frontier;
* *defer* — queued (FIFO) for a later window when the cap is exhausted,
  up to ``defer_windows`` windows' worth of capacity.  Deferred queries
  are admitted ahead of newer arrivals;
* *shed* — rejected at the door when the queue is full too.  Shed queries
  count as SLA violations and deliver zero quality.

Admitted queries are grouped into **dynamically sized batches** under the
SLA: at estimated load ``λ`` a batch of ``b`` takes about ``b / λ`` seconds
to fill, so the largest batch whose fill time fits the predicted headroom
is ``b = floor((sla − p99(path, λ)) · λ)``, clamped to ``[1, max_batch]``
(and to 1 whenever the path has no predicted headroom).

The decision loop is vectorized the way PR 3 vectorized simulation: path
candidates for all windows come from one
:meth:`~repro.serving.router.PathTable.best_path_batch` call, batch sizes
from array arithmetic, and per-query bookkeeping from contiguous slice
fills over arrival-sorted arrays — only the inherently sequential
hysteresis/backlog state machine remains a scalar loop over *windows*, so
scheduling cost is amortized over every query in the window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.serving.metrics import weighted_percentile
from repro.serving.router import MultiPathRouter, PathTable, RoutingResult, _event_log
from repro.serving.trace import LoadTrace

__all__ = [
    "QUERY_ADMITTED",
    "QUERY_DEFERRED",
    "QUERY_SHED",
    "ARRIVAL_PROCESSES",
    "FrontendResult",
    "FrontendSchedule",
    "QueryStream",
    "StreamingFrontend",
]

#: Admission states recorded per query in :attr:`FrontendSchedule.query_state`.
QUERY_SHED = 0
QUERY_ADMITTED = 1
QUERY_DEFERRED = 2

#: Arrival processes :meth:`QueryStream.from_trace` can realize.
ARRIVAL_PROCESSES = ("poisson", "paced")


@dataclass(frozen=True)
class QueryStream:
    """Individual query arrivals realized from a load trace.

    Parameters
    ----------
    trace_name : str
        Name of the generating trace, carried into artifacts.
    duration_seconds : float
        Span the stream covers (the trace's duration).
    arrival_seconds : np.ndarray
        Arrival time of every query, non-decreasing, in ``[0, duration)``.
    """

    trace_name: str
    duration_seconds: float
    arrival_seconds: np.ndarray

    def __post_init__(self) -> None:
        """Validate ordering and freeze the arrival array."""
        arrivals = np.asarray(self.arrival_seconds, dtype=np.float64)
        if arrivals.ndim != 1:
            raise ValueError("arrival_seconds must be one-dimensional")
        if arrivals.size and (np.any(np.diff(arrivals) < 0) or arrivals[0] < 0):
            raise ValueError("arrivals must be non-negative and non-decreasing")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        arrivals.setflags(write=False)
        object.__setattr__(self, "arrival_seconds", arrivals)

    @property
    def num_queries(self) -> int:
        """Number of queries in the stream."""
        return int(self.arrival_seconds.size)

    @classmethod
    def from_trace(cls, trace: LoadTrace, seed: int = 0, process: str = "poisson") -> "QueryStream":
        """Realize per-query arrivals from a trace's step-wise offered load.

        Parameters
        ----------
        trace : LoadTrace
            The generating load trace.
        seed : int
            Arrival-noise seed (ignored by the ``paced`` process); the
            same (trace, seed, process) triple reproduces the same stream.
        process : str
            ``"poisson"`` — per-step Poisson counts with uniform arrival
            offsets, the stochastic process the load model assumes; or
            ``"paced"`` — deterministic error-diffused counts
            (``diff(floor(cumsum(expected)))``) with evenly spaced
            arrivals, for tests that need exact, seed-free streams.

        Returns
        -------
        QueryStream
            The realized stream, sorted by arrival time.
        """
        expected = trace.queries_per_step()
        starts = np.arange(trace.num_steps) * trace.step_seconds
        if process == "poisson":
            rng = np.random.default_rng(seed)
            counts = rng.poisson(expected)
            times = np.repeat(starts, counts)
            times = np.sort(times + trace.step_seconds * rng.random(times.size))
        elif process == "paced":
            cumulative = np.floor(np.cumsum(expected) + 1e-9).astype(np.int64)
            counts = np.diff(np.concatenate(([0], cumulative)))
            offsets = np.arange(int(counts.sum())) - np.repeat(cumulative - counts, counts)
            spacing = np.divide(
                trace.step_seconds, counts, out=np.zeros(counts.size), where=counts > 0
            )
            times = np.repeat(starts, counts) + (offsets + 0.5) * np.repeat(spacing, counts)
        else:
            raise ValueError(
                f"unknown arrival process {process!r}; expected one of {ARRIVAL_PROCESSES}"
            )
        return cls(trace.name, trace.duration_seconds, times)


@dataclass(eq=False)
class FrontendSchedule:
    """Everything the frontend decided for one stream — no simulation yet.

    Produced by :meth:`StreamingFrontend.schedule` (the serving-time hot
    path the throughput benchmark measures); consumed by
    :meth:`StreamingFrontend.serve` to score the schedule on the analytic
    engine.

    Attributes
    ----------
    trace_name : str
        Name of the served trace.
    window_seconds : float
        Decision-window width.
    estimates : np.ndarray
        Causal load estimate entering each window.
    window_paths : np.ndarray
        Chosen path index per window.
    window_switches : np.ndarray
        Whether each window starts a new dwell segment.
    window_batch : np.ndarray
        Dynamic batch size chosen per window.
    window_arrivals : np.ndarray
        Queries arriving in each window.
    window_admitted : np.ndarray
        Queries served in each window (fresh arrivals + drained backlog).
    window_from_queue : np.ndarray
        The drained-backlog share of ``window_admitted``.
    window_deferred : np.ndarray
        Fresh arrivals pushed to the backlog in each window.
    window_shed : np.ndarray
        Fresh arrivals rejected in each window.
    window_shed_reason : np.ndarray
        Why each window shed (``"none"`` when it shed nothing,
        ``"no-capacity"`` when the chosen path's admission cap was zero,
        ``"queue-full"`` when the defer queue had no room).  Always
        populated — batching on or off — so ``route_steps.*`` artifacts
        stay schema-identical across modes.
    query_state : np.ndarray
        Admission outcome per query (``QUERY_SHED`` / ``QUERY_ADMITTED``
        / ``QUERY_DEFERRED``; deferred queries dropped at stream end are
        reclassified as shed).
    query_path : np.ndarray
        Path index that served each query (``-1``: shed).
    query_serve_window : np.ndarray
        Window that served each query (``-1``: shed).
    max_queue_depth : int
        Deepest the defer queue ever grew, in queries.
    """

    trace_name: str
    window_seconds: float
    estimates: np.ndarray
    window_paths: np.ndarray
    window_switches: np.ndarray
    window_batch: np.ndarray
    window_arrivals: np.ndarray
    window_admitted: np.ndarray
    window_from_queue: np.ndarray
    window_deferred: np.ndarray
    window_shed: np.ndarray
    window_shed_reason: np.ndarray
    query_state: np.ndarray
    query_path: np.ndarray
    query_serve_window: np.ndarray
    max_queue_depth: int

    @property
    def num_windows(self) -> int:
        """Number of decision windows in the schedule."""
        return int(self.window_paths.size)

    @property
    def offered_queries(self) -> int:
        """Total queries the stream offered."""
        return int(self.query_state.size)

    @property
    def served_queries(self) -> int:
        """Queries served (promptly or after deferral)."""
        return int(self.window_admitted.sum())

    @property
    def deferred_served_queries(self) -> int:
        """Queries that waited in the defer queue and were later served."""
        return int(np.sum(self.query_state == QUERY_DEFERRED))

    @property
    def shed_queries(self) -> int:
        """Queries rejected by admission control (never served)."""
        return int(np.sum(self.query_state == QUERY_SHED))

    @property
    def shed_rate(self) -> float:
        """Fraction of offered queries shed."""
        return self.shed_queries / self.offered_queries if self.offered_queries else 0.0

    @property
    def defer_rate(self) -> float:
        """Fraction of offered queries served only after deferral."""
        return self.deferred_served_queries / self.offered_queries if self.offered_queries else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Served-query-weighted mean of the per-window batch sizes."""
        served = self.window_admitted.sum()
        if not served:
            return 0.0
        return float(np.sum(self.window_admitted * self.window_batch) / served)

    @property
    def num_switches(self) -> int:
        """Path switches committed across the schedule."""
        return int(np.sum(self.window_switches[1:]))


@dataclass(frozen=True, eq=False)
class FrontendResult:
    """A scored frontend schedule: routing metrics plus admission statistics.

    Attributes
    ----------
    routing : RoutingResult
        The router-comparable aggregate (policy ``"frontend"``); its
        ``path_steps``/``switch_steps`` are per *window*.  Shed queries
        count as SLA violations with zero delivered quality; deferred
        queries are served but their queueing delay busts the SLA, so they
        violate too.
    schedule : FrontendSchedule
        The full per-window / per-query decision record.
    """

    routing: RoutingResult
    schedule: FrontendSchedule


@dataclass
class StreamingFrontend:
    """The per-query serving loop: admission, dynamic batching, path routing.

    The frontend shares its decision core with the step router it wraps:
    load estimation goes through the router's estimator
    (:meth:`~repro.serving.router.MultiPathRouter.estimate_over` on the
    trace's per-window offered rates — the same observable the step router
    sees) and path selection through
    :meth:`~repro.serving.router.MultiPathRouter.decide_from_estimates`
    (hysteresis, switch cost, dwell forecasting included).  With
    ``window_seconds`` equal to the trace's step width the per-window path
    choices therefore reproduce the step router's bit-for-bit; smaller
    windows re-decide faster than the trace changes, larger ones smooth
    over it.

    Parameters
    ----------
    router : MultiPathRouter
        The decision core (table, estimator, hysteresis, switch cost).
    window_seconds : float, optional
        Decision-window width (default: the served trace's step width).
    max_batch : int
        Upper clamp on the dynamic batch size.
    batching : bool
        ``False`` pins every batch to size 1.
    defer_windows : float
        Defer-queue capacity, in multiples of the current window's
        admission cap; ``0`` disables deferral (admit or shed only).
    arrival_process : str
        Arrival process used when no explicit stream is supplied
        (``"poisson"`` or ``"paced"``).
    arrival_seed : int
        Seed for the implicit arrival draw.
    """

    router: MultiPathRouter
    window_seconds: float | None = None
    max_batch: int = 64
    batching: bool = True
    defer_windows: float = 1.0
    arrival_process: str = "poisson"
    arrival_seed: int = 0

    def __post_init__(self) -> None:
        """Validate the frontend knobs."""
        if self.window_seconds is not None and self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.defer_windows < 0:
            raise ValueError("defer_windows must be non-negative")
        if self.arrival_process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival_process!r}; "
                f"expected one of {ARRIVAL_PROCESSES}"
            )

    @property
    def table(self) -> PathTable:
        """The compiled routing table decisions are read from."""
        return self.router.table

    def _window_width(self, trace: LoadTrace) -> float:
        """The effective decision-window width for one trace."""
        return float(self.window_seconds or trace.step_seconds)

    def _stream_for(self, trace: LoadTrace) -> QueryStream:
        """The implicit arrival stream used when none is supplied."""
        return QueryStream.from_trace(trace, seed=self.arrival_seed, process=self.arrival_process)

    def decide_windows(self, trace: LoadTrace) -> tuple[np.ndarray, list[int], list[bool]]:
        """Per-window estimates, path choices and switch flags for a trace.

        This is the window-granular decision record the equivalence suite
        compares against :meth:`MultiPathRouter.decide`: estimates come
        from the router's estimator over the trace's per-window offered
        rates, paths from the router's own state machine.

        Parameters
        ----------
        trace : LoadTrace
            The served load trace.

        Returns
        -------
        tuple[np.ndarray, list[int], list[bool]]
            The causal estimate entering each window, the chosen path per
            window, and the per-window switch markers.
        """
        rates = trace.window_rates(self._window_width(trace))
        estimates = self.router.estimate_over(rates)
        paths, switches = self.router.decide_from_estimates(estimates)
        return estimates, paths, switches

    def _batch_sizes(self, estimates: np.ndarray, paths: np.ndarray) -> np.ndarray:
        """Dynamic batch size per window: fill time must fit the headroom.

        At estimated load ``λ`` a batch of ``b`` takes ``b / λ`` seconds to
        fill, so the largest SLA-safe batch is
        ``floor((sla − p99(path, λ)) · λ)``, clamped to ``[1, max_batch]``
        and to 1 wherever the path predicts no headroom (or batching is
        disabled).
        """
        batch = np.ones(estimates.size, dtype=np.int64)
        if not self.batching or self.max_batch == 1:
            return batch
        p99 = np.empty(estimates.size)
        for index in np.unique(paths):
            mask = paths == index
            p99[mask] = self.table.p99_profile(int(index), estimates[mask])
        headroom = self.table.sla_seconds - p99
        open_windows = np.isfinite(p99) & (headroom > 0)
        batch[open_windows] = np.clip(
            np.floor(headroom[open_windows] * estimates[open_windows]), 1, self.max_batch
        ).astype(np.int64)
        return batch

    def schedule(self, trace: LoadTrace, stream: QueryStream | None = None) -> FrontendSchedule:
        """Route a whole query stream: the serving-time hot path.

        No engine work happens here — only the compiled table, the
        estimator and integer bookkeeping — so this is what the routed
        queries/s benchmark measures.  Per-query outcomes are written with
        contiguous slice fills over the arrival-sorted query arrays; the
        scalar loop runs once per *window*.

        Parameters
        ----------
        trace : LoadTrace
            The offered-load trace (drives estimation and windowing).
        stream : QueryStream, optional
            The realized arrivals (default: drawn from the trace with the
            frontend's ``arrival_process`` and ``arrival_seed``).

        Returns
        -------
        FrontendSchedule
            Per-window and per-query decisions.
        """
        window = self._window_width(trace)
        if stream is None:
            stream = self._stream_for(trace)
        log = _event_log()
        estimates, paths, switches = self.decide_windows(trace)
        num_windows = estimates.size
        paths_array = np.asarray(paths, dtype=np.intp)
        batch = self._batch_sizes(estimates, paths_array)

        window_of = np.floor_divide(stream.arrival_seconds, window).astype(np.int64)
        if stream.num_queries and window_of[-1] >= num_windows:
            raise ValueError("stream extends past the trace duration")
        arrivals = np.bincount(window_of, minlength=num_windows)
        window_ends = np.cumsum(arrivals)

        max_feasible = np.asarray(
            [self.table.max_feasible_qps(i) for i in range(len(self.table.paths))]
        )
        caps = np.floor(max_feasible[paths_array] * window).astype(np.int64)
        queue_limits = np.floor(self.defer_windows * caps).astype(np.int64)

        query_state = np.zeros(stream.num_queries, dtype=np.int8)
        query_path = np.full(stream.num_queries, -1, dtype=np.int32)
        query_serve_window = np.full(stream.num_queries, -1, dtype=np.int64)
        admitted = np.zeros(num_windows, dtype=np.int64)
        from_queue = np.zeros(num_windows, dtype=np.int64)
        deferred = np.zeros(num_windows, dtype=np.int64)
        shed = np.zeros(num_windows, dtype=np.int64)
        shed_reason = np.full(num_windows, "none", dtype="<U11")

        backlog: deque[tuple[int, int]] = deque()
        backlog_size = 0
        max_queue_depth = 0
        for w in range(num_windows):
            path = int(paths_array[w])
            cap = int(caps[w])
            remaining = cap
            # Drain the FIFO backlog ahead of this window's fresh arrivals.
            while backlog and remaining > 0:
                lo, hi = backlog[0]
                take = min(hi - lo, remaining)
                query_path[lo : lo + take] = path
                query_serve_window[lo : lo + take] = w
                remaining -= take
                backlog_size -= take
                from_queue[w] += take
                if take == hi - lo:
                    backlog.popleft()
                else:
                    backlog[0] = (lo + take, hi)
            start = int(window_ends[w - 1]) if w else 0
            end = int(window_ends[w])
            take = min(end - start, remaining)
            if take:
                query_state[start : start + take] = QUERY_ADMITTED
                query_path[start : start + take] = path
                query_serve_window[start : start + take] = w
            admitted[w] = cap - (remaining - take)
            overflow_lo = start + take
            space = int(queue_limits[w]) - backlog_size
            defer = min(end - overflow_lo, max(space, 0))
            if defer:
                query_state[overflow_lo : overflow_lo + defer] = QUERY_DEFERRED
                backlog.append((overflow_lo, overflow_lo + defer))
                backlog_size += defer
            deferred[w] = defer
            shed[w] = end - overflow_lo - defer
            if shed[w]:
                shed_reason[w] = "no-capacity" if cap == 0 else "queue-full"
            max_queue_depth = max(max_queue_depth, backlog_size)
            # Only eventful windows are logged (shed, deferred or switched):
            # quiet windows dominate healthy streams and would swamp the log.
            if log is not None and (shed[w] or deferred[w] or switches[w]):
                log.emit(
                    "admission_window",
                    window=w,
                    path_name=self.table.paths[path].name,
                    arrivals=int(arrivals[w]),
                    admitted=int(admitted[w]),
                    deferred=int(deferred[w]),
                    shed=int(shed[w]),
                    shed_reason=str(shed_reason[w]),
                    queue_depth=backlog_size,
                    switch=bool(switches[w]),
                )
        # Queries still queued when the stream ends were never served.
        for lo, hi in backlog:
            query_state[lo:hi] = QUERY_SHED
        if log is not None:
            log.emit(
                "stream_summary",
                trace=trace.name,
                num_windows=int(num_windows),
                offered=int(stream.num_queries),
                admitted=int(admitted.sum()),
                deferred=int(deferred.sum()),
                shed=int(shed.sum()) + backlog_size,
                max_queue_depth=int(max_queue_depth),
            )

        return FrontendSchedule(
            trace_name=trace.name,
            window_seconds=window,
            estimates=estimates,
            window_paths=paths_array,
            window_switches=np.asarray(switches, dtype=bool),
            window_batch=batch,
            window_arrivals=arrivals,
            window_admitted=admitted,
            window_from_queue=from_queue,
            window_deferred=deferred,
            window_shed=shed,
            window_shed_reason=shed_reason,
            query_state=query_state,
            query_path=query_path,
            query_serve_window=query_serve_window,
            max_queue_depth=max_queue_depth,
        )

    def serve(self, trace: LoadTrace, stream: QueryStream | None = None) -> FrontendResult:
        """Schedule a stream and score the schedule on the analytic engine.

        Every window with admitted queries becomes a dwell cell: the
        chosen path serves a steady-state arrival window at the *admitted*
        rate (admission control means the engine never sees an infeasible
        load unless the table's frontier and the engine's utilization
        threshold disagree, in which case the cell counts as saturated,
        exactly as in :meth:`PathTable.evaluate_route`).  Switch windows
        charge the router's ``switch_penalty_seconds`` to every query.
        Shed queries count as SLA violations with ``inf`` latency mass and
        zero quality; deferred-then-served queries deliver their path's
        quality but violate the SLA through their queueing delay, which is
        pooled into the latency sample.

        Parameters
        ----------
        trace : LoadTrace
            The offered-load trace.
        stream : QueryStream, optional
            The realized arrivals (default: drawn from the trace).

        Returns
        -------
        FrontendResult
            Routing metrics plus the underlying schedule.
        """
        if stream is None:
            stream = self._stream_for(trace)
        if stream.num_queries == 0:
            raise ValueError("cannot serve an empty query stream")
        plan = self.schedule(trace, stream)
        table = self.table
        total = plan.offered_queries

        served_windows = np.flatnonzero(plan.window_admitted > 0)
        admitted_qps = plan.window_admitted[served_windows] / plan.window_seconds
        for index in np.unique(plan.window_paths[served_windows]):
            mask = plan.window_paths[served_windows] == index
            table.prefill_dwell(int(index), admitted_qps[mask])

        violations = 0.0
        quality_mass = 0.0
        effective_mass = 0.0
        occupancy: dict[str, float] = {}
        pooled_values: list[np.ndarray] = []
        pooled_weights: list[np.ndarray] = []
        penalty_base = self.router.switch_penalty_seconds
        for w, qps in zip(served_windows, admitted_qps):
            index = int(plan.window_paths[w])
            path = table.paths[index]
            weight = int(plan.window_admitted[w])
            prompt = weight - int(plan.window_from_queue[w])
            quality_mass += weight * path.quality
            occupancy[path.name] = occupancy.get(path.name, 0.0) + weight
            latencies = table.dwell_latencies(index, float(qps))
            if latencies is None:  # saturated: every query violates, none delivers
                violations += weight
                pooled_values.append(np.asarray([np.inf]))
                pooled_weights.append(np.asarray([float(weight)]))
                continue
            penalty = penalty_base if plan.window_switches[w] else 0.0
            observed = latencies + penalty if penalty else latencies
            violating = float(np.mean(observed > table.sla_seconds))
            violations += prompt * violating + (weight - prompt)
            effective_mass += prompt * path.quality * (1.0 - violating)
            pooled_values.append(observed)
            pooled_weights.append(np.full(observed.size, prompt / observed.size))
        # Deferred queries: their queueing delay is their latency story.
        deferred_mask = plan.query_state == QUERY_DEFERRED
        if np.any(deferred_mask):
            waits = (
                plan.query_serve_window[deferred_mask] * plan.window_seconds
                - stream.arrival_seconds[deferred_mask]
            )
            pooled_values.append(np.maximum(waits, 0.0))
            pooled_weights.append(np.ones(waits.size))
        shed_total = plan.shed_queries
        if shed_total:
            violations += shed_total
            pooled_values.append(np.asarray([np.inf]))
            pooled_weights.append(np.asarray([float(shed_total)]))

        p99 = weighted_percentile(
            np.concatenate(pooled_values), np.concatenate(pooled_weights), 99.0
        )
        routing = RoutingResult(
            policy="frontend",
            trace_name=trace.name,
            quality=quality_mass / total,
            effective_quality=effective_mass / total,
            p99_seconds=p99,
            violation_rate=violations / total,
            num_switches=plan.num_switches,
            total_queries=float(total),
            path_steps=tuple(int(i) for i in plan.window_paths),
            switch_steps=tuple(bool(s) for s in plan.window_switches),
            occupancy={name: mass / total for name, mass in occupancy.items()},
        )
        return FrontendResult(routing=routing, schedule=plan)
