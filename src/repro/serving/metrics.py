"""Latency / throughput metrics for at-scale simulations."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def makespan_seconds(arrivals: np.ndarray, latencies: np.ndarray) -> float:
    """Span from the first arrival to the last *completion* of the window.

    The last query to complete is not necessarily the last to arrive (a late
    arrival can finish on an idle lane while an earlier one still queues), so
    the span runs to ``max(arrival + latency)``, not to the final arrival's
    completion.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    latencies = np.asarray(latencies, dtype=np.float64)
    if arrivals.shape != latencies.shape:
        raise ValueError("arrivals and latencies must align")
    if arrivals.size == 0:
        return 0.0
    return float(np.max(arrivals + latencies) - arrivals[0])


def percentile(latencies: np.ndarray, q: float) -> float:
    """The ``q``-th percentile (0..100) of a latency sample."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must lie in [0, 100], got {q}")
    latencies = np.asarray(latencies, dtype=np.float64)
    if latencies.size == 0:
        raise ValueError("cannot compute a percentile of an empty sample")
    return float(np.percentile(latencies, q))


def weighted_percentile(values: np.ndarray, weights: np.ndarray, q: float) -> float:
    """The ``q``-th percentile (0..100) of ``values`` under sample ``weights``.

    Inverse of the weighted empirical CDF: the smallest value whose
    cumulative weight reaches ``q`` percent of the total.  Both the router
    and the per-query frontend pool heterogeneous dwell samples (different
    sizes, different per-query weights, possibly ``inf`` mass from saturated
    or shed queries) through this single definition.

    Parameters
    ----------
    values : np.ndarray
        Sample values (``inf`` entries are legal and sort last).
    weights : np.ndarray
        Non-negative sample weights, same shape as ``values``; must sum to
        a positive total.
    q : float
        Percentile in ``[0, 100]``.

    Returns
    -------
    float
        The weighted percentile, possibly ``inf``.
    """
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    order = np.argsort(values)
    values = values[order]
    weights = weights[order]
    cumulative = np.cumsum(weights)
    total = cumulative[-1]
    if total <= 0:
        raise ValueError("weights must sum to a positive total")
    index = int(np.searchsorted(cumulative, (q / 100.0) * total, side="left"))
    return float(values[min(index, values.size - 1)])


@dataclass(frozen=True)
class LatencyReport:
    """Summary of one at-scale simulation run."""

    offered_qps: float
    achieved_qps: float
    num_queries: int
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    max_latency: float
    saturated: bool

    @classmethod
    def from_latencies(
        cls,
        latencies: np.ndarray,
        offered_qps: float,
        makespan_seconds: float,
        saturated: bool,
    ) -> "LatencyReport":
        """Summarize a latency sample into percentile and throughput fields."""
        latencies = np.asarray(latencies, dtype=np.float64)
        if latencies.size == 0:
            raise ValueError("cannot build a report from zero completed queries")
        achieved = latencies.size / makespan_seconds if makespan_seconds > 0 else 0.0
        return cls(
            offered_qps=offered_qps,
            achieved_qps=achieved,
            num_queries=int(latencies.size),
            mean_latency=float(latencies.mean()),
            p50_latency=percentile(latencies, 50),
            p95_latency=percentile(latencies, 95),
            p99_latency=percentile(latencies, 99),
            max_latency=float(latencies.max()),
            saturated=saturated,
        )

    def meets_sla(self, sla_seconds: float) -> bool:
        """Whether p99 latency is within the SLA and the system kept up."""
        if sla_seconds <= 0:
            raise ValueError("sla_seconds must be positive")
        return not self.saturated and self.p99_latency <= sla_seconds
