"""RecPipe reproduction: co-designing multi-stage recommendation models and hardware.

The package is organized bottom-up:

* :mod:`repro.nn` -- minimal numpy neural-network substrate.
* :mod:`repro.data` -- synthetic Criteo / MovieLens datasets and ranking queries.
* :mod:`repro.models` -- DLRM, NeuMF, the Pareto-optimal model zoo and trainer.
* :mod:`repro.quality` -- NDCG and multi-stage ranking-funnel simulation.
* :mod:`repro.hardware` -- analytic CPU / GPU / PCIe / memory performance models.
* :mod:`repro.accel` -- systolic array, top-k filter, embedding caches, the
  baseline (Centaur-like) accelerator and RPAccel.
* :mod:`repro.serving` -- discrete-event at-scale simulator (Poisson arrivals,
  tail latency, throughput).
* :mod:`repro.core` -- the RecPipe design-space explorer and scheduler.
* :mod:`repro.experiments` -- harnesses regenerating every table and figure.
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "data",
    "models",
    "quality",
    "hardware",
    "accel",
    "serving",
    "core",
    "experiments",
]
