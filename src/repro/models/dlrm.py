"""Deep Learning Recommendation Model (DLRM).

Architecture (Naumov et al., arXiv:1906.00091 -- the model used throughout the
paper's Criteo experiments):

* a *bottom MLP* maps the dense features to the embedding dimension,
* one embedding table per categorical feature maps sparse ids to the same
  dimension,
* a *feature interaction* computes dot products between every pair of latent
  vectors (bottom output + all embedding lookups) and concatenates them with
  the bottom output,
* a *top MLP* maps the interaction features to a single CTR logit.

The network hyperparameters configured by the paper (embedding dimension,
bottom/top MLP widths -- Table 1) are exposed through :class:`DLRMConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import RecommendationModel
from repro.models.cost import ModelCost
from repro.nn import EmbeddingBagCollection, MLP


@dataclass(frozen=True)
class DLRMConfig:
    """Hyperparameters of a DLRM instance.

    ``mlp_bottom`` includes the dense-feature input width and must end in
    ``embedding_dim`` (the interaction requires equal widths).  ``mlp_top``
    lists hidden widths only; the input width is derived from the interaction
    and a final single-logit output layer is appended automatically.
    """

    name: str
    embedding_dim: int
    mlp_bottom: tuple[int, ...]
    mlp_top: tuple[int, ...]
    table_sizes: tuple[int, ...]
    reference_storage_bytes: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if len(self.mlp_bottom) < 2:
            raise ValueError("mlp_bottom must include input and output widths")
        if self.mlp_bottom[-1] != self.embedding_dim:
            raise ValueError(
                f"bottom MLP must end in embedding_dim={self.embedding_dim}, "
                f"got {self.mlp_bottom[-1]}"
            )
        if not self.table_sizes:
            raise ValueError("at least one embedding table is required")

    @property
    def num_dense(self) -> int:
        return self.mlp_bottom[0]

    @property
    def num_tables(self) -> int:
        return len(self.table_sizes)

    @property
    def num_interaction_features(self) -> int:
        """Width of the pairwise dot-product interaction output."""
        vectors = self.num_tables + 1
        return vectors * (vectors - 1) // 2

    @property
    def top_input_width(self) -> int:
        return self.embedding_dim + self.num_interaction_features


class DLRM(RecommendationModel):
    """DLRM with explicit forward/backward over the numpy substrate."""

    def __init__(self, config: DLRMConfig) -> None:
        self.config = config
        self.name = config.name
        rng = np.random.default_rng(config.seed)
        self.bottom = MLP(config.mlp_bottom, rng=rng, final_activation="relu")
        self.embeddings = EmbeddingBagCollection(config.table_sizes, config.embedding_dim, rng=rng)
        top_sizes = [config.top_input_width, *config.mlp_top, 1]
        self.top = MLP(top_sizes, rng=rng, final_activation="none")
        self._cache: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, dense: np.ndarray, sparse: np.ndarray) -> np.ndarray:
        dense = np.asarray(dense, dtype=np.float64)
        sparse = np.asarray(sparse)
        cfg = self.config
        if dense.ndim != 2 or dense.shape[1] != cfg.num_dense:
            raise ValueError(
                f"expected dense features of shape (batch, {cfg.num_dense}), got {dense.shape}"
            )
        bottom_out = self.bottom.forward(dense)
        emb_out = self.embeddings.forward(sparse)
        batch = dense.shape[0]
        emb_vectors = emb_out.reshape(batch, cfg.num_tables, cfg.embedding_dim)
        vectors = np.concatenate([bottom_out[:, None, :], emb_vectors], axis=1)
        gram = np.einsum("bik,bjk->bij", vectors, vectors)
        iu, ju = np.triu_indices(cfg.num_tables + 1, k=1)
        interactions = gram[:, iu, ju]
        top_input = np.concatenate([bottom_out, interactions], axis=1)
        logits = self.top.forward(top_input)
        self._cache = {"vectors": vectors, "iu": iu, "ju": ju}
        return logits

    def backward(self, grad_logits: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cfg = self.config
        vectors = self._cache["vectors"]
        iu, ju = self._cache["iu"], self._cache["ju"]
        batch = vectors.shape[0]

        grad_top_input = self.top.backward(grad_logits)
        grad_bottom_direct = grad_top_input[:, : cfg.embedding_dim]
        grad_interactions = grad_top_input[:, cfg.embedding_dim :]

        grad_gram = np.zeros((batch, cfg.num_tables + 1, cfg.num_tables + 1))
        grad_gram[:, iu, ju] = grad_interactions
        # gram = V V^T, so dV = (G + G^T) V.
        grad_vectors = np.einsum("bij,bjk->bik", grad_gram + grad_gram.transpose(0, 2, 1), vectors)
        grad_bottom = grad_vectors[:, 0, :] + grad_bottom_direct
        grad_emb = grad_vectors[:, 1:, :].reshape(batch, cfg.num_tables * cfg.embedding_dim)
        self.bottom.backward(grad_bottom)
        self.embeddings.backward(grad_emb)

    # ------------------------------------------------------------------ #
    # Parameters & cost
    # ------------------------------------------------------------------ #
    def parameters(self) -> list[np.ndarray]:
        return self.bottom.parameters() + self.embeddings.parameters() + self.top.parameters()

    def gradients(self) -> list[np.ndarray]:
        return self.bottom.gradients() + self.embeddings.gradients() + self.top.gradients()

    def cost(self) -> ModelCost:
        cfg = self.config
        macs = (self.bottom.flops_per_sample() + self.top.flops_per_sample()) // 2
        # The pairwise interaction itself is d MACs per pair.
        macs += cfg.num_interaction_features * cfg.embedding_dim
        bottom_dims = tuple(
            (cfg.mlp_bottom[i], cfg.mlp_bottom[i + 1])
            for i in range(len(cfg.mlp_bottom) - 1)
        )
        top_sizes = (cfg.top_input_width, *cfg.mlp_top, 1)
        top_dims = tuple((top_sizes[i], top_sizes[i + 1]) for i in range(len(top_sizes) - 1))
        return ModelCost(
            name=cfg.name,
            macs_per_item=macs,
            embedding_lookups_per_item=cfg.num_tables,
            embedding_dim=cfg.embedding_dim,
            mlp_parameters=self.bottom.num_parameters() + self.top.num_parameters(),
            embedding_rows=sum(cfg.table_sizes),
            reference_storage_bytes=cfg.reference_storage_bytes,
            mlp_layer_dims=bottom_dims + top_dims,
        )
