"""Training loop and evaluation helpers for the recommendation models."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.datasets import CTRBatch, Dataset
from repro.models.base import RecommendationModel
from repro.nn import Adam, BCEWithLogitsLoss, SGD


@dataclass
class TrainingHistory:
    """Per-epoch training metrics."""

    train_loss: list[float] = field(default_factory=list)
    test_loss: list[float] = field(default_factory=list)
    test_error: list[float] = field(default_factory=list)

    @property
    def final_test_error(self) -> float:
        if not self.test_error:
            raise ValueError("no epochs recorded")
        return self.test_error[-1]


class Trainer:
    """Mini-batch trainer for DLRM / NeuMF on a CTR dataset."""

    def __init__(
        self,
        model: RecommendationModel,
        lr: float = 0.01,
        optimizer: str = "adam",
        batch_size: int = 256,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.model = model
        self.batch_size = batch_size
        self.loss_fn = BCEWithLogitsLoss()
        self._rng = np.random.default_rng(seed)
        if optimizer == "adam":
            self.optimizer = Adam(model.parameters(), model.gradients(), lr=lr)
        elif optimizer == "sgd":
            self.optimizer = SGD(model.parameters(), model.gradients(), lr=lr)
        else:
            raise ValueError(f"unknown optimizer: {optimizer!r}")

    def fit(self, dataset: Dataset, epochs: int = 3) -> TrainingHistory:
        """Train for ``epochs`` passes over ``dataset.train``."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        history = TrainingHistory()
        for _ in range(epochs):
            train_loss = self._run_epoch(dataset.train)
            test_loss = self.evaluate_loss(dataset.test)
            test_error = evaluate_error(self.model, dataset.test)
            history.train_loss.append(train_loss)
            history.test_loss.append(test_loss)
            history.test_error.append(test_error)
        return history

    def _run_epoch(self, batch: CTRBatch) -> float:
        n = len(batch)
        perm = self._rng.permutation(n)
        total_loss = 0.0
        num_batches = 0
        for start in range(0, n, self.batch_size):
            idx = perm[start : start + self.batch_size]
            mini = batch.take(idx)
            self.model.zero_grad()
            logits = self.model.forward(mini.dense, mini.sparse)
            loss = self.loss_fn.forward(logits, mini.labels)
            grad_logits = self.loss_fn.backward()
            self.model.backward(grad_logits)
            self.optimizer.step()
            total_loss += loss
            num_batches += 1
        return total_loss / max(num_batches, 1)

    def evaluate_loss(self, batch: CTRBatch) -> float:
        """Mean BCE loss over ``batch`` without updating the model."""
        logits = self.model.forward(batch.dense, batch.sparse)
        return self.loss_fn.forward(logits, batch.labels)


def evaluate_error(model: RecommendationModel, batch: CTRBatch, threshold: float = 0.5) -> float:
    """Classification error (percent) of thresholded CTR predictions.

    This is the metric Table 1 reports (21.36% / 21.26% / 21.13%): the
    fraction of test interactions whose click outcome the model mispredicts.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    probs = model.predict(batch.dense, batch.sparse)
    predictions = (probs >= threshold).astype(np.float64)
    return float(np.mean(predictions != batch.labels) * 100.0)
