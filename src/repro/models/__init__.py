"""Recommendation models: DLRM, neural matrix factorization, and the model zoo.

Two model families from the paper are implemented on top of the
:mod:`repro.nn` substrate:

* :class:`~repro.models.dlrm.DLRM` -- Facebook's Deep Learning Recommendation
  Model (bottom MLP over dense features, per-feature embedding tables, dot
  product feature interaction, top MLP producing a CTR score).  Used with the
  Criteo-like dataset.
* :class:`~repro.models.neumf.NeuMF` -- neural matrix factorization (GMF +
  MLP towers over user/item embeddings).  Used with the MovieLens-like
  datasets.

:mod:`repro.models.zoo` holds the Pareto-optimal configurations from Table 1
(RMsmall / RMmed / RMlarge) plus MovieLens presets, and
:mod:`repro.models.cost` derives the compute/memory cost profile that the
hardware models consume.
"""

from repro.models.base import RecommendationModel
from repro.models.cost import ModelCost
from repro.models.dlrm import DLRM, DLRMConfig
from repro.models.neumf import NeuMF, NeuMFConfig
from repro.models.zoo import (
    MODEL_ZOO,
    ModelSpec,
    build_model,
    criteo_model_specs,
    get_model_spec,
    movielens_model_specs,
)
from repro.models.training import TrainingHistory, Trainer, evaluate_error

__all__ = [
    "RecommendationModel",
    "ModelCost",
    "DLRM",
    "DLRMConfig",
    "NeuMF",
    "NeuMFConfig",
    "ModelSpec",
    "MODEL_ZOO",
    "get_model_spec",
    "criteo_model_specs",
    "movielens_model_specs",
    "build_model",
    "Trainer",
    "TrainingHistory",
    "evaluate_error",
]
