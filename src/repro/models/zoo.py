"""Model zoo: the Pareto-optimal configurations used throughout the paper.

Table 1 of the paper defines three Pareto-optimal DLRM configurations for
Criteo (RMsmall / RMmed / RMlarge); the MovieLens experiments use three NeuMF
configurations of analogous small/medium/large complexity.  Each entry records

* the architecture hyperparameters needed to instantiate the numpy model,
* the paper-scale reference cost (model size in GB, MLP compute per item,
  published test error), and
* ``score_noise`` -- the standard deviation of the ranking-score error this
  model family exhibits relative to the ground-truth relevance.  The quality
  simulator (:mod:`repro.quality`) uses it to evaluate NDCG across the huge
  multi-stage design space without retraining a model per configuration,
  exactly as the paper's own methodology evaluates quality from trained-model
  score fidelity.

Lower ``score_noise`` corresponds to lower test error (a more accurate model
ranks items closer to the ideal order).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.cost import ModelCost
from repro.models.dlrm import DLRM, DLRMConfig
from repro.models.neumf import NeuMF, NeuMFConfig

GB = 1024**3


@dataclass(frozen=True)
class ModelSpec:
    """A named model configuration plus its paper-scale reference cost."""

    name: str
    family: str  # "dlrm" or "neumf"
    embedding_dim: int
    mlp_bottom: tuple[int, ...]
    mlp_top: tuple[int, ...]
    reference_storage_bytes: int
    reference_macs_per_item: int
    paper_error_percent: float
    score_noise: float

    def __post_init__(self) -> None:
        if self.family not in ("dlrm", "neumf"):
            raise ValueError(f"unknown model family: {self.family!r}")
        if self.score_noise < 0:
            raise ValueError("score_noise must be non-negative")

    def reference_cost(self, num_tables: int = 26) -> ModelCost:
        """Paper-scale cost profile (used by analytic hardware models)."""
        lookups = num_tables if self.family == "dlrm" else 4
        mlp_params = _mlp_parameters(self.mlp_bottom) + _mlp_parameters(
            (self.mlp_top[0] if self.mlp_top else self.embedding_dim, 1)
        )
        embedding_rows = self.reference_storage_bytes // (self.embedding_dim * 4)
        return ModelCost(
            name=self.name,
            macs_per_item=self.reference_macs_per_item,
            embedding_lookups_per_item=lookups,
            embedding_dim=self.embedding_dim,
            mlp_parameters=mlp_params,
            embedding_rows=embedding_rows,
            reference_storage_bytes=self.reference_storage_bytes,
            mlp_layer_dims=self.mlp_layer_dims(),
        )

    def mlp_layer_dims(self) -> tuple[tuple[int, int], ...]:
        """(input, output) widths of the model's dense layers."""
        if self.family == "dlrm":
            bottom = tuple(
                (self.mlp_bottom[i], self.mlp_bottom[i + 1])
                for i in range(len(self.mlp_bottom) - 1)
            )
            top_head = self.mlp_top[0] if self.mlp_top else self.embedding_dim
            top_sizes = (top_head, *self.mlp_top[1:], 1)
            top = tuple((top_sizes[i], top_sizes[i + 1]) for i in range(len(top_sizes) - 1))
            return bottom + top
        mlp_sizes = (2 * self.embedding_dim, *self.mlp_top)
        layers = tuple((mlp_sizes[i], mlp_sizes[i + 1]) for i in range(len(mlp_sizes) - 1))
        return layers + ((self.embedding_dim + self.mlp_top[-1], 1),)


def _mlp_parameters(sizes: tuple[int, ...]) -> int:
    return sum(sizes[i] * sizes[i + 1] + sizes[i + 1] for i in range(len(sizes) - 1))


# --------------------------------------------------------------------------- #
# Criteo / DLRM specs (Table 1)
# --------------------------------------------------------------------------- #
RM_SMALL = ModelSpec(
    name="RMsmall",
    family="dlrm",
    embedding_dim=4,
    mlp_bottom=(13, 64, 4),
    mlp_top=(64,),
    reference_storage_bytes=1 * GB,
    reference_macs_per_item=1_100,
    paper_error_percent=21.36,
    score_noise=0.30,
)

RM_MED = ModelSpec(
    name="RMmed",
    family="dlrm",
    embedding_dim=16,
    mlp_bottom=(13, 64, 16),
    mlp_top=(64,),
    reference_storage_bytes=4 * GB,
    reference_macs_per_item=2_000,
    paper_error_percent=21.26,
    score_noise=0.22,
)

RM_LARGE = ModelSpec(
    name="RMlarge",
    family="dlrm",
    embedding_dim=32,
    mlp_bottom=(13, 512, 256, 128, 64, 32),
    mlp_top=(96,),
    reference_storage_bytes=8 * GB,
    reference_macs_per_item=180_000,
    paper_error_percent=21.13,
    score_noise=0.12,
)

# --------------------------------------------------------------------------- #
# MovieLens / NeuMF specs (small / medium / large complexity tiers)
# --------------------------------------------------------------------------- #
NMF_SMALL = ModelSpec(
    name="NMFsmall",
    family="neumf",
    embedding_dim=8,
    mlp_bottom=(),
    mlp_top=(32, 16),
    reference_storage_bytes=int(0.05 * GB),
    reference_macs_per_item=700,
    paper_error_percent=0.0,
    score_noise=0.28,
)

NMF_MED = ModelSpec(
    name="NMFmed",
    family="neumf",
    embedding_dim=16,
    mlp_bottom=(),
    mlp_top=(64, 32),
    reference_storage_bytes=int(0.2 * GB),
    reference_macs_per_item=3_000,
    paper_error_percent=0.0,
    score_noise=0.20,
)

NMF_LARGE = ModelSpec(
    name="NMFlarge",
    family="neumf",
    embedding_dim=64,
    mlp_bottom=(),
    mlp_top=(256, 128, 64),
    reference_storage_bytes=int(0.8 * GB),
    reference_macs_per_item=60_000,
    paper_error_percent=0.0,
    score_noise=0.11,
)

MODEL_ZOO: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (RM_SMALL, RM_MED, RM_LARGE, NMF_SMALL, NMF_MED, NMF_LARGE)
}


def get_model_spec(name: str) -> ModelSpec:
    """Look up a model spec by name (case-sensitive, e.g. ``"RMlarge"``)."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}") from None


def criteo_model_specs() -> list[ModelSpec]:
    """The Criteo Pareto frontier, smallest to largest."""
    return [RM_SMALL, RM_MED, RM_LARGE]


def movielens_model_specs() -> list[ModelSpec]:
    """The MovieLens Pareto frontier, smallest to largest."""
    return [NMF_SMALL, NMF_MED, NMF_LARGE]


def build_model(
    spec: ModelSpec,
    table_sizes: list[int] | tuple[int, ...],
    num_dense: int | None = None,
    seed: int = 0,
):
    """Instantiate a trainable numpy model for ``spec`` on a given dataset.

    ``table_sizes`` comes from the dataset (:class:`repro.data.Dataset`):
    for DLRM it is the per-categorical-feature table sizes, for NeuMF it is
    ``[num_users, num_items]``.
    """
    if spec.family == "dlrm":
        if num_dense is None:
            num_dense = spec.mlp_bottom[0]
        bottom = (num_dense, *spec.mlp_bottom[1:])
        config = DLRMConfig(
            name=spec.name,
            embedding_dim=spec.embedding_dim,
            mlp_bottom=bottom,
            mlp_top=spec.mlp_top,
            table_sizes=tuple(table_sizes),
            reference_storage_bytes=spec.reference_storage_bytes,
            seed=seed,
        )
        return DLRM(config)
    if spec.family == "neumf":
        if len(table_sizes) != 2:
            raise ValueError(
                "NeuMF requires table_sizes=[num_users, num_items], got "
                f"{len(table_sizes)} entries"
            )
        config = NeuMFConfig(
            name=spec.name,
            num_users=int(table_sizes[0]),
            num_items=int(table_sizes[1]),
            embedding_dim=spec.embedding_dim,
            mlp_hidden=spec.mlp_top,
            reference_storage_bytes=spec.reference_storage_bytes,
            seed=seed,
        )
        return NeuMF(config)
    raise ValueError(f"unknown model family: {spec.family!r}")
