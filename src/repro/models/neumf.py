"""Neural matrix factorization (NeuMF, He et al. 2017).

Used by the paper for the MovieLens datasets.  NeuMF combines two towers over
user and item embeddings:

* **GMF** (generalized matrix factorization): element-wise product of the
  user and item embeddings,
* **MLP tower**: the concatenated user/item embeddings pushed through an MLP,

whose outputs are concatenated and mapped by a final linear layer to one
preference logit.  Compared with DLRM the model is MLP-dominated with only two
(user, item) embedding tables -- which is exactly why the optimal multi-stage
configuration differs between Criteo and MovieLens in the paper's Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import RecommendationModel
from repro.models.cost import ModelCost
from repro.nn import MLP, EmbeddingTable, Linear


@dataclass(frozen=True)
class NeuMFConfig:
    """Hyperparameters of a NeuMF instance.

    ``mlp_hidden`` lists the hidden widths of the MLP tower; its input width
    is ``2 * embedding_dim`` (user and item embeddings concatenated) and it is
    appended automatically.
    """

    name: str
    num_users: int
    num_items: int
    embedding_dim: int
    mlp_hidden: tuple[int, ...]
    reference_storage_bytes: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if not self.mlp_hidden:
            raise ValueError("mlp_hidden must contain at least one width")


class NeuMF(RecommendationModel):
    """NeuMF with explicit forward/backward over the numpy substrate."""

    def __init__(self, config: NeuMFConfig) -> None:
        self.config = config
        self.name = config.name
        rng = np.random.default_rng(config.seed)
        d = config.embedding_dim
        self.user_gmf = EmbeddingTable(config.num_users, d, rng=rng)
        self.item_gmf = EmbeddingTable(config.num_items, d, rng=rng)
        self.user_mlp = EmbeddingTable(config.num_users, d, rng=rng)
        self.item_mlp = EmbeddingTable(config.num_items, d, rng=rng)
        self.mlp = MLP([2 * d, *config.mlp_hidden], rng=rng, final_activation="relu")
        self.head = Linear(d + config.mlp_hidden[-1], 1, rng=rng)
        self._cache: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, dense: np.ndarray, sparse: np.ndarray) -> np.ndarray:
        sparse = np.asarray(sparse)
        if sparse.ndim != 2 or sparse.shape[1] != 2:
            raise ValueError(
                f"NeuMF expects sparse features of shape (batch, 2) holding "
                f"[user_id, item_id], got {sparse.shape}"
            )
        users = sparse[:, 0]
        items = sparse[:, 1]
        u_gmf = self.user_gmf.forward(users)
        i_gmf = self.item_gmf.forward(items)
        gmf_out = u_gmf * i_gmf
        u_mlp = self.user_mlp.forward(users)
        i_mlp = self.item_mlp.forward(items)
        mlp_in = np.concatenate([u_mlp, i_mlp], axis=1)
        mlp_out = self.mlp.forward(mlp_in)
        head_in = np.concatenate([gmf_out, mlp_out], axis=1)
        logits = self.head.forward(head_in)
        self._cache = {"u_gmf": u_gmf, "i_gmf": i_gmf}
        return logits

    def backward(self, grad_logits: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        d = self.config.embedding_dim
        grad_head_in = self.head.backward(grad_logits)
        grad_gmf = grad_head_in[:, :d]
        grad_mlp_out = grad_head_in[:, d:]

        # GMF: out = u * i  =>  du = grad * i, di = grad * u.
        self.user_gmf.backward(grad_gmf * self._cache["i_gmf"])
        self.item_gmf.backward(grad_gmf * self._cache["u_gmf"])

        grad_mlp_in = self.mlp.backward(grad_mlp_out)
        self.user_mlp.backward(grad_mlp_in[:, :d])
        self.item_mlp.backward(grad_mlp_in[:, d:])

    # ------------------------------------------------------------------ #
    # Parameters & cost
    # ------------------------------------------------------------------ #
    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for module in (
            self.user_gmf,
            self.item_gmf,
            self.user_mlp,
            self.item_mlp,
            self.mlp,
            self.head,
        ):
            params.extend(module.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        grads: list[np.ndarray] = []
        for module in (
            self.user_gmf,
            self.item_gmf,
            self.user_mlp,
            self.item_mlp,
            self.mlp,
            self.head,
        ):
            grads.extend(module.gradients())
        return grads

    def cost(self) -> ModelCost:
        cfg = self.config
        macs = (self.mlp.flops_per_sample() + self.head.flops_per_sample()) // 2
        macs += cfg.embedding_dim  # GMF element-wise product
        mlp_sizes = (2 * cfg.embedding_dim, *cfg.mlp_hidden)
        layer_dims = tuple((mlp_sizes[i], mlp_sizes[i + 1]) for i in range(len(mlp_sizes) - 1))
        layer_dims = layer_dims + ((cfg.embedding_dim + cfg.mlp_hidden[-1], 1),)
        return ModelCost(
            name=cfg.name,
            macs_per_item=macs,
            # Four lookups per item: GMF and MLP towers each fetch user + item.
            embedding_lookups_per_item=4,
            embedding_dim=cfg.embedding_dim,
            mlp_parameters=self.mlp.num_parameters() + self.head.num_parameters(),
            embedding_rows=2 * (cfg.num_users + cfg.num_items),
            reference_storage_bytes=cfg.reference_storage_bytes,
            mlp_layer_dims=layer_dims,
        )
