"""Per-item cost profile of a recommendation model.

The hardware models never execute the numpy networks directly when estimating
performance -- they consume a :class:`ModelCost` describing how much compute
(MAC operations), how many embedding lookups, and how many bytes of model
state one candidate-item inference requires.  Keeping this as an explicit
value object means the same cost can describe either the scaled-down synthetic
model actually instantiated in this repo or the paper-scale model (the
``reference_*`` fields), which is what the memory-capacity experiments
(Figure 1c, Figure 13) operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

FP32_BYTES = 4


@dataclass(frozen=True)
class ModelCost:
    """Compute and memory demands of scoring one candidate item.

    Attributes:
        name: model identifier (e.g. ``"RMsmall"``).
        macs_per_item: multiply-accumulate operations in the MLPs per item.
        embedding_lookups_per_item: embedding-vector fetches per item.
        embedding_dim: latent vector width (elements per fetched vector).
        mlp_parameters: number of dense (MLP) weights.
        embedding_rows: total rows across all embedding tables as
            instantiated in this repo.
        reference_storage_bytes: the paper-scale model size (Table 1 reports
            1 / 4 / 8 GB) used for capacity experiments.
        mlp_layer_dims: (input, output) widths of each dense layer, used by
            the systolic-array model to estimate MAC utilization.
    """

    name: str
    macs_per_item: int
    embedding_lookups_per_item: int
    embedding_dim: int
    mlp_parameters: int
    embedding_rows: int
    reference_storage_bytes: int
    mlp_layer_dims: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.macs_per_item < 0:
            raise ValueError("macs_per_item must be non-negative")
        if self.embedding_lookups_per_item < 0:
            raise ValueError("embedding_lookups_per_item must be non-negative")
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")

    @property
    def flops_per_item(self) -> int:
        """FLOPs per item (2 FLOPs per MAC)."""
        return 2 * self.macs_per_item

    @property
    def embedding_bytes_per_item(self) -> int:
        """Bytes of embedding data fetched per item at fp32."""
        return self.embedding_lookups_per_item * self.embedding_dim * FP32_BYTES

    @property
    def mlp_weight_bytes(self) -> int:
        """Bytes of MLP weights that must be resident to run the model."""
        return self.mlp_parameters * FP32_BYTES

    @property
    def instantiated_embedding_bytes(self) -> int:
        """Embedding storage of the scaled-down model built in this repo."""
        return self.embedding_rows * self.embedding_dim * FP32_BYTES

    @property
    def activation_bytes_per_item(self) -> int:
        """Approximate activation traffic per item (input + interaction)."""
        return (self.embedding_lookups_per_item + 2) * self.embedding_dim * FP32_BYTES

    def scaled(self, embedding_scale: float = 1.0, name: str | None = None) -> "ModelCost":
        """Return a copy with the paper-scale embedding storage scaled.

        Used by the future-model projections (Figure 13) which grow embedding
        tables by up to 32x.
        """
        if embedding_scale <= 0:
            raise ValueError("embedding_scale must be positive")
        return replace(
            self,
            name=name if name is not None else f"{self.name}x{embedding_scale:g}",
            reference_storage_bytes=int(self.reference_storage_bytes * embedding_scale),
            embedding_rows=int(self.embedding_rows * embedding_scale),
        )
