"""Common interface implemented by every recommendation model."""

from __future__ import annotations

import numpy as np

from repro.models.cost import ModelCost


class RecommendationModel:
    """Interface shared by DLRM and NeuMF.

    A model scores (user-context, candidate-item) pairs: ``predict`` takes the
    dense and sparse feature blocks (one row per candidate) and returns a
    predicted click-through-rate / preference probability per row.  Training
    is driven by :class:`repro.models.training.Trainer` through
    ``forward`` / ``backward`` / ``parameters`` / ``gradients``.
    """

    name: str = "model"

    def forward(self, dense: np.ndarray, sparse: np.ndarray) -> np.ndarray:
        """Return raw logits of shape ``(batch, 1)``."""
        raise NotImplementedError

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate a gradient with respect to the logits."""
        raise NotImplementedError

    def predict(self, dense: np.ndarray, sparse: np.ndarray) -> np.ndarray:
        """Return predicted probabilities of shape ``(batch,)``."""
        logits = self.forward(dense, sparse).reshape(-1)
        return _sigmoid(logits)

    def parameters(self) -> list[np.ndarray]:
        raise NotImplementedError

    def gradients(self) -> list[np.ndarray]:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for g in self.gradients():
            g[...] = 0.0

    def cost(self) -> ModelCost:
        """Per-item compute/memory cost profile used by the hardware models."""
        raise NotImplementedError

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out
